(* Cross-library integration: run every engine / application end-to-end on
   small instances of the Table-2 presets and verify they all agree.  This
   is the safety net the benchmark harness relies on (its engines must
   produce identical |OUT| before their times are comparable). *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Presets = Jp_workload.Presets

let small name = Presets.load ~scale:0.02 ~seed:7 name

let two_path_engines =
  [
    ("mmjoin", fun r -> Joinproj.Two_path.project ~r ~s:r ());
    ( "nonmm",
      fun r ->
        Joinproj.Two_path.project ~strategy:Joinproj.Two_path.Combinatorial ~r ~s:r () );
    ("wcoj", fun r -> Jp_baselines.Fulljoin.two_path ~r ~s:r ());
    ("hash", fun r -> Jp_baselines.Hash_join.two_path ~r ~s:r);
    ("sortmerge", fun r -> Jp_baselines.Sortmerge_join.two_path ~r ~s:r);
    ("bitset", fun r -> Jp_baselines.Bitset_engine.two_path ~r ~s:r ());
  ]

let test_two_path_engines_agree () =
  List.iter
    (fun name ->
      let r = small name in
      match two_path_engines with
      | [] -> assert false
      | (_, first) :: rest ->
        let reference = first r in
        List.iter
          (fun (engine, f) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s on %s" engine (Presets.to_string name))
              true
              (Pairs.equal reference (f r)))
          rest)
    Presets.all

let test_ssj_agree_on_presets () =
  List.iter
    (fun name ->
      let r = small name in
      let reference = Jp_ssj.Mm_ssj.join ~c:2 r in
      Alcotest.(check bool)
        (Printf.sprintf "sizeaware on %s" (Presets.to_string name))
        true
        (Pairs.equal reference (Jp_ssj.Size_aware.join ~c:2 r));
      Alcotest.(check bool)
        (Printf.sprintf "sizeaware++ on %s" (Presets.to_string name))
        true
        (Pairs.equal reference (Jp_ssj.Size_aware_pp.join ~c:2 r)))
    [ Presets.Dblp; Presets.Jokes; Presets.Image ]

let test_scj_agree_on_presets () =
  List.iter
    (fun name ->
      let r = small name in
      let reference = Jp_scj.Mm_scj.join r in
      List.iter
        (fun (algo, f) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s" algo (Presets.to_string name))
            true
            (Pairs.equal reference (f r)))
        [
          ("pretti", Jp_scj.Pretti.join);
          ("limit+", Jp_scj.Limit_plus.join ~limit:2);
          ("piejoin", fun r -> Jp_scj.Piejoin.join r);
        ])
    [ Presets.Roadnet; Presets.Words; Presets.Protein ]

let test_star_strategies_agree_on_presets () =
  List.iter
    (fun name ->
      let r = small name in
      let rels = [| r; r; r |] in
      Alcotest.(check bool)
        (Printf.sprintf "star on %s" (Presets.to_string name))
        true
        (Jp_relation.Tuples.equal
           (Joinproj.Star.project ~strategy:Joinproj.Star.Matrix rels)
           (Joinproj.Star.project ~strategy:Joinproj.Star.Combinatorial rels)))
    [ Presets.Dblp; Presets.Roadnet; Presets.Words ]

let test_bsi_strategies_agree () =
  let r = small Presets.Jokes in
  let n = Relation.src_count r in
  let queries = Jp_workload.Generate.batch_queries ~seed:3 ~count:200 ~nx:n ~nz:n () in
  let mm = Jp_bsi.Bsi.answer_batch ~strategy:Jp_bsi.Bsi.Mm ~r ~s:r queries in
  let comb = Jp_bsi.Bsi.answer_batch ~strategy:Jp_bsi.Bsi.Combinatorial ~r ~s:r queries in
  Alcotest.(check bool) "mm = combinatorial answers" true (mm = comb)

(* Guarded variants join the same cross-engine matrix: under every
   injected misestimation factor the guard may re-route mid-query, but
   |OUT| (and the pairs themselves) must stay those of the unguarded
   engines above. *)
let guard_factors = [ 0.01; 1.0; 100.0 ]

let guard_of f =
  Jp_adaptive.Guard.with_inject (Jp_adaptive.Inject.uniform f)
    Jp_adaptive.Guard.default

let test_guarded_two_path_agrees () =
  List.iter
    (fun name ->
      let r = small name in
      let reference = Joinproj.Two_path.project ~r ~s:r () in
      List.iter
        (fun f ->
          let guard = guard_of f in
          List.iter
            (fun (engine, out) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s x%g on %s" engine f (Presets.to_string name))
                true
                (Pairs.equal reference out))
            [
              ("guarded mm", Joinproj.Two_path.project ~guard ~r ~s:r ());
              ( "guarded nonmm",
                Joinproj.Two_path.project
                  ~strategy:Joinproj.Two_path.Combinatorial ~guard ~r ~s:r () );
            ])
        guard_factors)
    Presets.all

let test_guarded_star_agrees () =
  List.iter
    (fun name ->
      let r = small name in
      let rels = [| r; r; r |] in
      let reference = Joinproj.Star.project rels in
      List.iter
        (fun (label, guard) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s" label (Presets.to_string name))
            true
            (Jp_relation.Tuples.equal reference
               (Joinproj.Star.project ~guard rels)))
        [
          ("guarded", Jp_adaptive.Guard.default);
          ("budget 0", Jp_adaptive.Guard.with_budget_ms 0.0 Jp_adaptive.Guard.default);
        ])
    [ Presets.Dblp; Presets.Words ]

let test_guarded_ssj_agrees () =
  List.iter
    (fun name ->
      let r = small name in
      let reference = Jp_ssj.Mm_ssj.join ~c:2 r in
      List.iter
        (fun f ->
          Alcotest.(check bool)
            (Printf.sprintf "guarded ssj x%g on %s" f (Presets.to_string name))
            true
            (Pairs.equal reference (Jp_ssj.Mm_ssj.join ~guard:(guard_of f) ~c:2 r)))
        guard_factors)
    [ Presets.Dblp; Presets.Jokes; Presets.Image ]

let test_guarded_scj_agrees () =
  List.iter
    (fun name ->
      let r = small name in
      let reference = Jp_scj.Mm_scj.join r in
      List.iter
        (fun f ->
          Alcotest.(check bool)
            (Printf.sprintf "guarded scj x%g on %s" f (Presets.to_string name))
            true
            (Pairs.equal reference (Jp_scj.Mm_scj.join ~guard:(guard_of f) r)))
        guard_factors)
    [ Presets.Roadnet; Presets.Words ]

let test_guarded_bsi_agrees () =
  let r = small Presets.Jokes in
  let n = Relation.src_count r in
  let queries = Jp_workload.Generate.batch_queries ~seed:3 ~count:200 ~nx:n ~nz:n () in
  let reference = Jp_bsi.Bsi.answer_batch ~r ~s:r queries in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "guarded bsi x%g" f)
        true
        (Jp_bsi.Bsi.answer_batch ~guard:(guard_of f) ~r ~s:r queries = reference))
    guard_factors

(* Served variants join the matrix too: routing a query through
   Jp_service (worker domain, cancel token, ticket) must hand back the
   same pairs as calling the engine directly. *)
let test_served_two_path_agrees () =
  let svc = Jp_service.create Jp_service.default in
  Fun.protect
    ~finally:(fun () -> Jp_service.shutdown svc)
    (fun () ->
      List.iter
        (fun name ->
          let r = small name in
          let reference = Joinproj.Two_path.project ~r ~s:r () in
          List.iter
            (fun (engine, run) ->
              let tk =
                Jp_service.submit svc (fun ~cancel ~attempt:_ ~degraded:_ ->
                    run ~cancel r)
              in
              match (Jp_service.await tk).Jp_service.outcome with
              | Ok pairs ->
                Alcotest.(check bool)
                  (Printf.sprintf "served %s on %s" engine (Presets.to_string name))
                  true
                  (Pairs.equal reference pairs)
              | Error e ->
                Alcotest.failf "served %s on %s: %s" engine
                  (Presets.to_string name)
                  (Jp_service.error_to_string e))
            [
              ("mmjoin", fun ~cancel r -> Joinproj.Two_path.project ~cancel ~r ~s:r ());
              ( "nonmm",
                fun ~cancel r ->
                  Joinproj.Two_path.project
                    ~strategy:Joinproj.Two_path.Combinatorial ~cancel ~r ~s:r () );
            ])
        Presets.all)

(* Open-loop served row: traffic arrives from a seeded schedule faster
   than it is answered, with the overload controller armed and a real
   deadline, so any mix of Ok / Shed / Expired_in_queue / Deadline can
   come back depending on machine speed.  The contract is load-
   independent: every Ok must be byte-identical to the unloaded engine,
   and everything else must be one of the typed load-control errors. *)
let test_open_loop_served_agrees () =
  let cfg =
    { Jp_service.default with
      Jp_service.queue_capacity = 64;
      Jp_service.controller = Some Jp_service.Overload.default }
  in
  List.iter
    (fun name ->
      let r = small name in
      let ds = Presets.to_string name in
      let reference = Joinproj.Two_path.project ~r ~s:r () in
      let svc = Jp_service.create cfg in
      Fun.protect
        ~finally:(fun () -> Jp_service.shutdown svc)
        (fun () ->
          let nq = 12 in
          let schedule = Jp_workload.Arrivals.schedule ~rate:300.0 ~count:nq () in
          let tickets = Array.make nq None in
          ignore
            (Jp_workload.Arrivals.drive ~now:Jp_util.Timer.now ~sleep:Unix.sleepf
               ~schedule (fun i ->
                 tickets.(i) <-
                   Some
                     (Jp_service.submit svc ~deadline_s:0.25
                        (fun ~cancel ~attempt:_ ~degraded ->
                          let guard =
                            if degraded then Some Jp_adaptive.Guard.safe else None
                          in
                          Joinproj.Two_path.project ?guard ~cancel ~r ~s:r ()))));
          Array.iteri
            (fun i tko ->
              match (Jp_service.await (Option.get tko)).Jp_service.outcome with
              | Ok pairs ->
                Alcotest.(check bool)
                  (Printf.sprintf "open-loop served on %s, query %d" ds i)
                  true
                  (Pairs.equal reference pairs)
              | Error
                  ( Jp_service.Shed | Jp_service.Expired_in_queue
                  | Jp_service.Deadline_exceeded | Jp_service.Overloaded ) ->
                ()
              | Error e ->
                Alcotest.failf "open-loop served on %s, query %d: %s" ds i
                  (Jp_service.error_to_string e))
            tickets))
    [ Presets.Jokes; Presets.Dblp ]

(* Cached variants join the matrix: every engine runs twice through one
   shared Jp_cache (the first pass fills it, the second hits), and both
   passes must return exactly the uncached reference.  One cache instance
   spans all presets — cross-dataset pollution must be impossible because
   every key carries the relations' fingerprints. *)
let test_cached_engines_agree () =
  let cache = Jp_cache.create () in
  List.iter
    (fun name ->
      let r = small name in
      let ds = Presets.to_string name in
      let memo () = Jp_cache.two_path_memo cache ~r ~s:r in
      let reference = Joinproj.Two_path.project ~r ~s:r () in
      for pass = 1 to 2 do
        Alcotest.(check bool)
          (Printf.sprintf "cached two-path pass %d on %s" pass ds)
          true
          (Pairs.equal reference
             (Joinproj.Two_path.project ~memo:(memo ()) ~r ~s:r ()))
      done;
      let counted_ref = Joinproj.Two_path.project_counts ~r ~s:r () in
      for pass = 1 to 2 do
        Alcotest.(check bool)
          (Printf.sprintf "cached counts pass %d on %s" pass ds)
          true
          (Jp_relation.Counted_pairs.equal counted_ref
             (Joinproj.Two_path.project_counts ~memo:(memo ()) ~r ~s:r ()))
      done;
      let ssj_ref = Jp_ssj.Mm_ssj.join ~c:2 r in
      for pass = 1 to 2 do
        Alcotest.(check bool)
          (Printf.sprintf "cached ssj pass %d on %s" pass ds)
          true
          (Pairs.equal ssj_ref (Jp_ssj.Mm_ssj.join ~cache ~c:2 r))
      done;
      let scj_ref = Jp_scj.Mm_scj.join r in
      for pass = 1 to 2 do
        Alcotest.(check bool)
          (Printf.sprintf "cached scj pass %d on %s" pass ds)
          true
          (Pairs.equal scj_ref (Jp_scj.Mm_scj.join ~cache r))
      done)
    Presets.all;
  let r = small Presets.Jokes in
  let n = Relation.src_count r in
  let queries = Jp_workload.Generate.batch_queries ~seed:3 ~count:200 ~nx:n ~nz:n () in
  let bsi_ref = Jp_bsi.Bsi.answer_batch ~r ~s:r queries in
  for pass = 1 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "cached bsi pass %d" pass)
      true
      (Jp_bsi.Bsi.answer_batch ~cache ~r ~s:r queries = bsi_ref)
  done

(* General-CQ rows: the decomposition planner joins the matrix.  Every
   pool query runs against brute force under each policy, and the
   guarded / cancelled / cached variants must be byte-identical to the
   plain run (same guarantee the two-path engines give above). *)
let cq_pool =
  [
    "Q(a, d) :- R(a, b), S(b, c), T(c, d)";
    "Q(a) :- R(a, b), S(c, b), T(c, d)";
    "Q(a, b, d) :- R(a, c), S(c, b), T(c, d)";
    "Q(a, c) :- R(a, b), S(c, b), T(c, d)";
  ]

let cq_catalog =
  lazy
    (List.map
       (fun (name, seed) ->
         (name, Gen.random_relation ~seed ~nx:6 ~ny:6 ~edges:14 ()))
       [ ("R", 21); ("S", 22); ("T", 23) ])

let cq_parse text =
  match Jp_query.Cq.parse text with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse %s: %s" text e

let cq_run ?policy ?guard ?cancel ?cache text =
  let catalog = Lazy.force cq_catalog in
  match
    Jp_query.Engine.run ?policy ?guard ?cancel ?cache catalog (cq_parse text)
  with
  | Ok out -> Jp_relation.Tuples.to_list out
  | Error e -> Alcotest.failf "cq run %s: %s" text e

let test_cq_engine_agrees_with_brute () =
  let catalog = Lazy.force cq_catalog in
  List.iter
    (fun text ->
      let expect = Gen.brute_cq catalog (cq_parse text) in
      List.iter
        (fun (label, policy) ->
          Alcotest.(check (list (list int)))
            (Printf.sprintf "%s [%s]" text label)
            expect (cq_run ~policy text))
        [
          ("auto", Jp_query.Planner.Cost_gate);
          ("mm", Jp_query.Planner.Always_mm);
          ("yannakakis", Jp_query.Planner.Never_mm);
        ])
    cq_pool

let test_guarded_cq_agrees () =
  List.iter
    (fun text ->
      let reference = cq_run ~policy:Jp_query.Planner.Always_mm text in
      List.iter
        (fun f ->
          Alcotest.(check (list (list int)))
            (Printf.sprintf "guarded cq x%g %s" f text)
            reference
            (cq_run ~policy:Jp_query.Planner.Always_mm ~guard:(guard_of f) text))
        guard_factors;
      Alcotest.(check (list (list int)))
        (Printf.sprintf "safe-guarded cq %s" text)
        reference
        (cq_run ~policy:Jp_query.Planner.Always_mm ~guard:Jp_adaptive.Guard.safe
           text))
    cq_pool

let test_cancelled_cq_agrees () =
  List.iter
    (fun text ->
      let reference = cq_run text in
      let cancel = Jp_util.Cancel.create () in
      Alcotest.(check (list (list int)))
        (Printf.sprintf "cancelled cq %s" text)
        reference (cq_run ~cancel text))
    cq_pool

let test_cached_cq_agrees () =
  let cache = Jp_cache.create () in
  List.iter
    (fun text ->
      let reference = cq_run ~policy:Jp_query.Planner.Always_mm text in
      for pass = 1 to 2 do
        Alcotest.(check (list (list int)))
          (Printf.sprintf "cached cq pass %d %s" pass text)
          reference
          (cq_run ~policy:Jp_query.Planner.Always_mm ~cache text)
      done)
    cq_pool

(* Tiled variants join the matrix: with a [?tile] config forcing the
   heavy product through Jp_tile (tiny tiles + a budget small enough to
   evict mid-product), boolean and counted projections must stay
   bit-equal to the untiled engines — alone and stacked under the
   guarded / cancelled / cached capabilities. *)
let tiny_tile = Jp_tile.config ~tile_bits:4 ~budget_bytes:8192 ~force:true ()

let test_tiled_two_path_agrees () =
  let matrix = Joinproj.Two_path.Matrix in
  List.iter
    (fun name ->
      let ds = Presets.to_string name in
      let r = small name in
      let reference = Joinproj.Two_path.project ~strategy:matrix ~r ~s:r () in
      let check label out =
        Alcotest.(check bool)
          (Printf.sprintf "%s on %s" label ds)
          true (Pairs.equal reference out)
      in
      check "tiled"
        (Joinproj.Two_path.project ~strategy:matrix ~tile:tiny_tile ~r ~s:r ());
      check "tiled 4 domains"
        (Joinproj.Two_path.project ~domains:4 ~strategy:matrix ~tile:tiny_tile
           ~r ~s:r ());
      List.iter
        (fun f ->
          check
            (Printf.sprintf "tiled guarded x%g" f)
            (Joinproj.Two_path.project ~strategy:matrix ~guard:(guard_of f)
               ~tile:tiny_tile ~r ~s:r ()))
        guard_factors;
      let cancel = Jp_util.Cancel.create () in
      check "tiled live-cancel"
        (Joinproj.Two_path.project ~strategy:matrix ~cancel ~tile:tiny_tile ~r
           ~s:r ());
      let cache = Jp_cache.create () in
      for pass = 1 to 2 do
        check
          (Printf.sprintf "tiled cached pass %d" pass)
          (Joinproj.Two_path.project ~strategy:matrix
             ~memo:(Jp_cache.two_path_memo cache ~r ~s:r)
             ~tile:tiny_tile ~r ~s:r ())
      done;
      let counted_ref =
        Joinproj.Two_path.project_counts ~strategy:matrix ~r ~s:r ()
      in
      let check_counted label out =
        Alcotest.(check bool)
          (Printf.sprintf "%s on %s" label ds)
          true
          (Jp_relation.Counted_pairs.equal counted_ref out)
      in
      check_counted "tiled counts"
        (Joinproj.Two_path.project_counts ~strategy:matrix ~tile:tiny_tile ~r
           ~s:r ());
      let ccache = Jp_cache.create () in
      for pass = 1 to 2 do
        check_counted
          (Printf.sprintf "tiled cached counts pass %d" pass)
          (Joinproj.Two_path.project_counts ~strategy:matrix
             ~memo:(Jp_cache.two_path_memo ccache ~r ~s:r)
             ~tile:tiny_tile ~r ~s:r ())
      done)
    Presets.all

let test_ordered_consistent_with_unordered () =
  let r = small Presets.Words in
  let c = 2 in
  let unordered = Pairs.count (Jp_ssj.Mm_ssj.join ~c r) in
  let ordered = Array.length (Jp_ssj.Ordered.via_counts ~c r) in
  Alcotest.(check int) "same pair count" unordered ordered

let suite =
  [
    Alcotest.test_case "two-path engines agree" `Quick test_two_path_engines_agree;
    Alcotest.test_case "ssj algorithms agree" `Quick test_ssj_agree_on_presets;
    Alcotest.test_case "scj algorithms agree" `Quick test_scj_agree_on_presets;
    Alcotest.test_case "star strategies agree" `Quick test_star_strategies_agree_on_presets;
    Alcotest.test_case "bsi strategies agree" `Quick test_bsi_strategies_agree;
    Alcotest.test_case "ordered vs unordered" `Quick test_ordered_consistent_with_unordered;
    Alcotest.test_case "guarded two-path agrees" `Quick test_guarded_two_path_agrees;
    Alcotest.test_case "guarded star agrees" `Quick test_guarded_star_agrees;
    Alcotest.test_case "guarded ssj agrees" `Quick test_guarded_ssj_agrees;
    Alcotest.test_case "guarded scj agrees" `Quick test_guarded_scj_agrees;
    Alcotest.test_case "guarded bsi agrees" `Quick test_guarded_bsi_agrees;
    Alcotest.test_case "served two-path agrees" `Quick test_served_two_path_agrees;
    Alcotest.test_case "open-loop served agrees" `Quick test_open_loop_served_agrees;
    Alcotest.test_case "cached engines agree" `Quick test_cached_engines_agree;
    Alcotest.test_case "tiled two-path agrees" `Quick test_tiled_two_path_agrees;
    Alcotest.test_case "cq engine = brute force" `Quick test_cq_engine_agrees_with_brute;
    Alcotest.test_case "guarded cq agrees" `Quick test_guarded_cq_agrees;
    Alcotest.test_case "cancelled cq agrees" `Quick test_cancelled_cq_agrees;
    Alcotest.test_case "cached cq agrees" `Quick test_cached_cq_agrees;
  ]
