module Pool = Jp_parallel.Pool
module Cancel = Jp_util.Cancel

let test_parallel_for_covers () =
  let n = 1000 in
  let hits = Array.make n 0 in
  Pool.parallel_for ~domains:4 ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_parallel_for_sequential_degenerate () =
  let n = 100 in
  let hits = Array.make n 0 in
  Pool.parallel_for ~domains:1 ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "domains=1 covers" true (Array.for_all (fun h -> h = 1) hits)

let test_parallel_for_empty () =
  let called = ref false in
  Pool.parallel_for ~domains:4 ~lo:5 ~hi:5 (fun _ -> called := true);
  Alcotest.(check bool) "empty range" false !called

let test_ranges_partition () =
  let n = 777 in
  let hits = Array.make n 0 in
  Pool.parallel_for_ranges ~domains:3 ~chunk:50 ~lo:0 ~hi:n (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool) "ranges cover exactly" true (Array.for_all (fun h -> h = 1) hits)

let test_map_reduce () =
  let n = 10_000 in
  let total =
    Pool.map_reduce ~domains:4 ~lo:0 ~hi:n ~combine:( + ) ~init:0 (fun i -> i)
  in
  Alcotest.(check int) "sum" (n * (n - 1) / 2) total

let test_map_reduce_sequential () =
  let total =
    Pool.map_reduce ~domains:1 ~lo:1 ~hi:11 ~combine:( + ) ~init:0 (fun i -> i)
  in
  Alcotest.(check int) "sum 1..10" 55 total

exception Boom

let test_exception_propagates () =
  Alcotest.check_raises "worker exception reraised" Boom (fun () ->
      Pool.parallel_for ~domains:3 ~lo:0 ~hi:100 (fun i ->
          if i = 37 then raise Boom))

let test_available_cores () =
  Alcotest.(check bool) "at least one core" true (Pool.available_cores () >= 1)

exception Boom_a
exception Boom_b

(* A raise in one chunk must stop the other workers claiming new chunks:
   the body at index 0 fails immediately, so only the handful of chunks
   claimed in the raise-to-stop-flag window may still run. *)
let test_stop_flag_prompt () =
  let n = 100_000 in
  let processed = Atomic.make 0 in
  (try
     Pool.parallel_for ~domains:2 ~chunk:1 ~lo:0 ~hi:n (fun i ->
         if i = 0 then raise Boom
         else ignore (Atomic.fetch_and_add processed 1))
   with Boom -> ());
  let p = Atomic.get processed in
  Alcotest.(check bool)
    (Printf.sprintf "stop flag halts chunk claims early (processed %d)" p)
    true (p < n / 2)

(* Two bodies raise; the chunk counter hands indices out in order, so the
   lower-indexed exception is recorded (and re-raised) deterministically
   even though the domains race. *)
let test_failure_lowest_index_wins () =
  Alcotest.check_raises "lowest-index exception re-raised" Boom_a (fun () ->
      Pool.parallel_for ~domains:2 ~chunk:1 ~lo:0 ~hi:1_000 (fun i ->
          if i = 10 then raise Boom_a;
          if i = 20 then raise Boom_b))

let test_map_reduce_failure () =
  Alcotest.check_raises "map_reduce re-raises" Boom_a (fun () ->
      ignore
        (Pool.map_reduce ~domains:2 ~chunk:1 ~lo:0 ~hi:1_000 ~combine:( + )
           ~init:0 (fun i -> if i = 7 then raise Boom_a else i)))

let test_cancel_precancelled () =
  let c = Cancel.create () in
  Cancel.cancel c;
  let ran = ref false in
  Alcotest.check_raises "pre-cancelled token raises"
    (Cancel.Cancelled Cancel.Requested) (fun () ->
      Pool.parallel_for ~domains:1 ~chunk:8 ~cancel:c ~lo:0 ~hi:100 (fun _ ->
          ran := true));
  Alcotest.(check bool) "body never ran" false !ran

let test_cancel_precancelled_parallel () =
  let c = Cancel.create () in
  Cancel.cancel c;
  let ran = ref false in
  Alcotest.check_raises "pre-cancelled token raises (parallel)"
    (Cancel.Cancelled Cancel.Requested) (fun () ->
      Pool.parallel_for ~domains:2 ~chunk:8 ~cancel:c ~lo:0 ~hi:100 (fun _ ->
          ran := true));
  Alcotest.(check bool) "body never ran" false !ran

(* Cancellation is chunk-granular: the chunk in flight finishes, the next
   claim observes the token.  With chunk=10 exactly one chunk runs. *)
let test_cancel_mid_run_seq () =
  let c = Cancel.create () in
  let count = ref 0 in
  Alcotest.check_raises "mid-run cancel raises"
    (Cancel.Cancelled Cancel.Requested) (fun () ->
      Pool.parallel_for ~domains:1 ~chunk:10 ~cancel:c ~lo:0 ~hi:10_000 (fun i ->
          incr count;
          if i = 5 then Cancel.cancel c));
  Alcotest.(check int) "exactly the in-flight chunk ran" 10 !count

let test_fault_hook_per_chunk () =
  let fired = ref 0 in
  Pool.set_fault_hook (Some (fun () -> incr fired));
  Fun.protect
    ~finally:(fun () -> Pool.set_fault_hook None)
    (fun () ->
      let c = Cancel.create () in
      Pool.parallel_for ~domains:1 ~chunk:50 ~cancel:c ~lo:0 ~hi:100 (fun _ -> ()));
  Alcotest.(check int) "hook consulted once per chunk" 2 !fired

let suite =
  [
    Alcotest.test_case "parallel_for covers" `Quick test_parallel_for_covers;
    Alcotest.test_case "parallel_for domains=1" `Quick test_parallel_for_sequential_degenerate;
    Alcotest.test_case "parallel_for empty" `Quick test_parallel_for_empty;
    Alcotest.test_case "ranges partition" `Quick test_ranges_partition;
    Alcotest.test_case "map_reduce" `Quick test_map_reduce;
    Alcotest.test_case "map_reduce sequential" `Quick test_map_reduce_sequential;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "available cores" `Quick test_available_cores;
    Alcotest.test_case "stop flag prompt" `Quick test_stop_flag_prompt;
    Alcotest.test_case "lowest-index failure wins" `Quick
      test_failure_lowest_index_wins;
    Alcotest.test_case "map_reduce failure" `Quick test_map_reduce_failure;
    Alcotest.test_case "pre-cancelled (seq)" `Quick test_cancel_precancelled;
    Alcotest.test_case "pre-cancelled (parallel)" `Quick
      test_cancel_precancelled_parallel;
    Alcotest.test_case "mid-run cancel chunk granular" `Quick
      test_cancel_mid_run_seq;
    Alcotest.test_case "fault hook per chunk" `Quick test_fault_hook_per_chunk;
  ]
