(* Degenerate and boundary inputs pushed through every public entry point:
   empty relations, singleton domains, self-loops, and hub-only shapes. *)

module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Two_path = Joinproj.Two_path

let empty = Relation.of_edges ~src_count:5 ~dst_count:5 [||]

let singleton = Relation.of_edges [| (0, 0) |]

(* one hub y connected to every x *)
let hub n =
  Relation.of_edges (Array.init n (fun i -> (i, 0)))

let test_two_path_empty () =
  Alcotest.(check int) "empty join" 0 (Pairs.count (Two_path.project ~r:empty ~s:empty ()));
  Alcotest.(check int) "empty left" 0
    (Pairs.count (Two_path.project ~r:empty ~s:singleton ()));
  Alcotest.(check int) "empty right" 0
    (Pairs.count (Two_path.project ~r:singleton ~s:empty ()));
  Alcotest.(check int) "empty counts" 0
    (Jp_relation.Counted_pairs.count (Two_path.project_counts ~r:empty ~s:empty ()))

let test_two_path_singleton () =
  let p = Two_path.project ~r:singleton ~s:singleton () in
  Alcotest.(check (list (pair int int))) "self pair" [ (0, 0) ] (Pairs.to_list p)

let test_two_path_hub () =
  (* hub: output is the complete bipartite n x n square *)
  let n = 30 in
  let r = hub n in
  List.iter
    (fun (d1, d2) ->
      let plan =
        {
          Joinproj.Optimizer.decision = Joinproj.Optimizer.Partitioned { d1; d2 };
          est_out = 1;
          join_size = 1;
          est_seconds = 0.0;
        }
      in
      Alcotest.(check int)
        (Printf.sprintf "hub d1=%d d2=%d" d1 d2)
        (n * n)
        (Pairs.count (Two_path.project ~plan ~r ~s:r ())))
    [ (1, 1); (1, 100); (100, 1) ]

let test_star_empty_component () =
  let t = Joinproj.Star.project ~thresholds:(2, 2) [| singleton; empty; singleton |] in
  Alcotest.(check int) "empty star" 0 (Jp_relation.Tuples.count t)

let test_ssj_empty_and_tiny () =
  Alcotest.(check int) "ssj empty" 0 (Pairs.count (Jp_ssj.Mm_ssj.join ~c:1 empty));
  Alcotest.(check int) "sizeaware empty" 0
    (Pairs.count (Jp_ssj.Size_aware.join ~c:1 empty));
  Alcotest.(check int) "sizeaware++ empty" 0
    (Pairs.count (Jp_ssj.Size_aware_pp.join ~c:1 empty));
  (* c bigger than every set: nothing qualifies *)
  let r = Relation.of_sets [| [| 0; 1 |]; [| 0; 1 |] |] in
  Alcotest.(check int) "c too large" 0 (Pairs.count (Jp_ssj.Mm_ssj.join ~c:3 r));
  Alcotest.(check int) "sizeaware c too large" 0
    (Pairs.count (Jp_ssj.Size_aware.join ~c:3 r))

let test_ssj_identical_sets () =
  let r = Relation.of_sets [| [| 0; 1; 2 |]; [| 0; 1; 2 |]; [| 0; 1; 2 |] |] in
  let expect = [ (0, 1); (0, 2); (1, 2) ] in
  Alcotest.(check (list (pair int int))) "identical mm" expect
    (Pairs.to_list (Jp_ssj.Mm_ssj.join ~c:3 r));
  Alcotest.(check (list (pair int int))) "identical sizeaware" expect
    (Pairs.to_list (Jp_ssj.Size_aware.join ~c:3 r));
  Alcotest.(check (list (pair int int))) "identical sizeaware++" expect
    (Pairs.to_list (Jp_ssj.Size_aware_pp.join ~c:3 r))

let test_scj_empty_and_single_element () =
  Alcotest.(check int) "scj empty" 0 (Pairs.count (Jp_scj.Pretti.join empty));
  Alcotest.(check int) "mm scj empty" 0 (Pairs.count (Jp_scj.Mm_scj.join empty));
  let r = Relation.of_sets [| [| 0 |]; [| 0 |]; [| 1 |] |] in
  let expect = [ (0, 1); (1, 0) ] in
  List.iter
    (fun (name, f) ->
      Alcotest.(check (list (pair int int))) name expect (Pairs.to_list (f r)))
    [
      ("pretti single", Jp_scj.Pretti.join);
      ("limit+ single", Jp_scj.Limit_plus.join ~limit:2);
      ("piejoin single", fun r -> Jp_scj.Piejoin.join r);
      ("mm single", fun r -> Jp_scj.Mm_scj.join r);
    ]

let test_bsi_empty_workload () =
  let stats =
    Jp_bsi.Bsi.simulate ~r:singleton ~s:singleton ~queries:[||] ~rate:10.0
      ~batch_size:5 ()
  in
  Alcotest.(check int) "no batches" 0 stats.Jp_bsi.Bsi.batches

let test_guards () =
  Alcotest.check_raises "ssj c" (Invalid_argument "Mm_ssj.join: c must be >= 1")
    (fun () -> ignore (Jp_ssj.Mm_ssj.join ~c:0 singleton));
  Alcotest.check_raises "sizeaware c" (Invalid_argument "Size_aware.join: c must be >= 1")
    (fun () -> ignore (Jp_ssj.Size_aware.join ~c:0 singleton));
  Alcotest.check_raises "sizeaware++ c"
    (Invalid_argument "Size_aware_pp.join: c must be >= 1") (fun () ->
      ignore (Jp_ssj.Size_aware_pp.join ~c:(-1) singleton));
  Alcotest.check_raises "overlap tree c"
    (Invalid_argument "Overlap_tree.similar_pairs: c must be >= 1") (fun () ->
      ignore (Jp_ssj.Overlap_tree.similar_pairs ~c:0 singleton))

let test_guarded_degenerate () =
  (* degenerate shapes through the guarded entry point: empty input with a
     zero budget (immediate degradation), singleton, and an all-heavy hub
     under a wild overestimate *)
  let module Guard = Jp_adaptive.Guard in
  let zero_budget = Guard.with_budget_ms 0.0 Guard.default in
  Alcotest.(check int) "guarded empty join" 0
    (Pairs.count (Two_path.project ~guard:zero_budget ~r:empty ~s:empty ()));
  let p = Two_path.project ~guard:Guard.default ~r:singleton ~s:singleton () in
  Alcotest.(check (list (pair int int))) "guarded self pair" [ (0, 0) ]
    (Pairs.to_list p);
  let n = 30 in
  let r = hub n in
  let overestimate =
    Guard.with_inject (Jp_adaptive.Inject.uniform 100.0) Guard.default
  in
  Alcotest.(check int) "guarded hub square" (n * n)
    (Pairs.count (Two_path.project ~guard:overestimate ~r ~s:r ()))

let test_optimizer_degenerate () =
  (* planning must never fail on degenerate inputs *)
  List.iter
    (fun r ->
      let p = Joinproj.Optimizer.plan ~r ~s:r () in
      Alcotest.(check bool) "join size nonneg" true (p.Joinproj.Optimizer.join_size >= 0);
      let pc = Joinproj.Optimizer.plan_counts ~r ~s:r () in
      Alcotest.(check bool) "counts join size nonneg" true
        (pc.Joinproj.Optimizer.join_size >= 0))
    [ empty; singleton; hub 50 ]

let test_estimator_degenerate () =
  Alcotest.(check int) "sampled empty" 0 (Joinproj.Estimator.sampled ~r:empty ~s:empty ());
  let lower, upper = Joinproj.Estimator.bounds ~r:empty ~s:empty in
  Alcotest.(check bool) "bounds ordered" true (lower <= upper)

let suite =
  [
    Alcotest.test_case "two-path empty" `Quick test_two_path_empty;
    Alcotest.test_case "two-path singleton" `Quick test_two_path_singleton;
    Alcotest.test_case "two-path hub" `Quick test_two_path_hub;
    Alcotest.test_case "star empty component" `Quick test_star_empty_component;
    Alcotest.test_case "ssj empty/tiny" `Quick test_ssj_empty_and_tiny;
    Alcotest.test_case "ssj identical sets" `Quick test_ssj_identical_sets;
    Alcotest.test_case "scj empty/single" `Quick test_scj_empty_and_single_element;
    Alcotest.test_case "bsi empty workload" `Quick test_bsi_empty_workload;
    Alcotest.test_case "guards" `Quick test_guards;
    Alcotest.test_case "guarded degenerate" `Quick test_guarded_degenerate;
    Alcotest.test_case "optimizer degenerate" `Quick test_optimizer_degenerate;
    Alcotest.test_case "estimator degenerate" `Quick test_estimator_degenerate;
  ]
