(* Jp_service + Jp_chaos: the resilient query service.  The contract under
   test: a submitted query resolves to exactly the fault-free engine result
   or a typed error — never a wrong answer — and the service neither leaks
   worker domains nor loses tickets, whatever the chaos seed injects. *)

module Service = Jp_service
module Chaos = Jp_chaos
module Cancel = Jp_util.Cancel
module Guard = Jp_adaptive.Guard
module Relation = Jp_relation.Relation
module Pairs = Jp_relation.Pairs
module Presets = Jp_workload.Presets
module Overload = Jp_service.Overload
module Arrivals = Jp_workload.Arrivals

let small name = Presets.load ~scale:0.02 ~seed:7 name

let with_service cfg f =
  let svc = Service.create cfg in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

let with_recording f =
  Jp_obs.reset ();
  Jp_obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Jp_obs.disable ();
      Jp_obs.reset ())
    f

(* Wait until a worker signals it has started running a job; the sleep
   keeps the spin polite on a single-core box. *)
let wait_for flag =
  while not (Atomic.get flag) do
    Unix.sleepf 0.0002
  done

let check_error msg expected = function
  | Error e when e = expected -> ()
  | Error e -> Alcotest.failf "%s: got error %s" msg (Service.error_to_string e)
  | Ok _ -> Alcotest.failf "%s: unexpectedly succeeded" msg

(* The two-path query every service test runs: [degraded] maps to the
   safe non-matrix guard, exactly as a real client would. *)
let count_query r ~cancel ~degraded =
  let guard = if degraded then Some Guard.safe else None in
  Pairs.count (Joinproj.Two_path.project ?guard ~cancel ~r ~s:r ())

(* Poll the token a few times up front so any armed fault (window <= 4)
   fires deterministically even on queries too small to reach the engine's
   own checkpoints. *)
let polled_count_query r ~cancel ~degraded =
  for _ = 1 to 8 do
    Cancel.check cancel
  done;
  count_query r ~cancel ~degraded

(* ------------------------------------------------------------------ *)
(* ?cancel is inert when unused: every engine with a fresh token must   *)
(* return exactly what it returns without one.                          *)
(* ------------------------------------------------------------------ *)

let test_cancel_token_inert () =
  let r = small Presets.Jokes in
  let tok () = Cancel.create () in
  Alcotest.(check bool) "two_path mm" true
    (Pairs.equal
       (Joinproj.Two_path.project ~r ~s:r ())
       (Joinproj.Two_path.project ~cancel:(tok ()) ~r ~s:r ()));
  Alcotest.(check bool) "two_path mm, 2 domains" true
    (Pairs.equal
       (Joinproj.Two_path.project ~domains:2 ~r ~s:r ())
       (Joinproj.Two_path.project ~domains:2 ~cancel:(tok ()) ~r ~s:r ()));
  Alcotest.(check bool) "two_path nonmm" true
    (Pairs.equal
       (Joinproj.Two_path.project ~strategy:Joinproj.Two_path.Combinatorial ~r
          ~s:r ())
       (Joinproj.Two_path.project ~strategy:Joinproj.Two_path.Combinatorial
          ~cancel:(tok ()) ~r ~s:r ()));
  let rels = [| r; r; r |] in
  Alcotest.(check bool) "star" true
    (Jp_relation.Tuples.equal
       (Joinproj.Star.project rels)
       (Joinproj.Star.project ~cancel:(tok ()) rels));
  Alcotest.(check bool) "ssj" true
    (Pairs.equal
       (Jp_ssj.Mm_ssj.join ~c:2 r)
       (Jp_ssj.Mm_ssj.join ~cancel:(tok ()) ~c:2 r));
  Alcotest.(check bool) "scj" true
    (Pairs.equal (Jp_scj.Mm_scj.join r) (Jp_scj.Mm_scj.join ~cancel:(tok ()) r));
  let n = Relation.src_count r in
  let queries =
    Jp_workload.Generate.batch_queries ~seed:3 ~count:100 ~nx:n ~nz:n ()
  in
  Alcotest.(check bool) "bsi" true
    (Jp_bsi.Bsi.answer_batch ~r ~s:r queries
    = Jp_bsi.Bsi.answer_batch ~cancel:(tok ()) ~r ~s:r queries)

let test_precancelled_engine_raises () =
  let r = small Presets.Jokes in
  let dead () =
    let c = Cancel.create () in
    Cancel.cancel c;
    c
  in
  List.iter
    (fun (engine, run) ->
      Alcotest.check_raises engine (Cancel.Cancelled Cancel.Requested) (fun () ->
          run (dead ()) r))
    [
      ("two_path", fun c r -> ignore (Joinproj.Two_path.project ~cancel:c ~r ~s:r ()));
      ("star", fun c r -> ignore (Joinproj.Star.project ~cancel:c [| r; r; r |]));
      ("ssj", fun c r -> ignore (Jp_ssj.Mm_ssj.join ~cancel:c ~c:2 r));
      ("scj", fun c r -> ignore (Jp_scj.Mm_scj.join ~cancel:c r));
    ]

(* ------------------------------------------------------------------ *)
(* Service happy path, deadlines, admission control, client cancel      *)
(* ------------------------------------------------------------------ *)

let test_submit_await () =
  let r = small Presets.Jokes in
  let direct = count_query r ~cancel:(Cancel.create ()) ~degraded:false in
  with_service Service.default (fun svc ->
      let tk = Service.submit svc (fun ~cancel ~attempt:_ ~degraded -> count_query r ~cancel ~degraded) in
      let rep = Service.await tk in
      (match rep.Service.outcome with
      | Ok n -> Alcotest.(check int) "served = direct" direct n
      | Error e -> Alcotest.failf "unexpected error %s" (Service.error_to_string e));
      Alcotest.(check int) "one attempt" 1 rep.Service.attempts;
      Alcotest.(check int) "no retries" 0 rep.Service.retries;
      Alcotest.(check bool) "not degraded" false rep.Service.degraded;
      let again = Service.await tk in
      Alcotest.(check bool) "await is idempotent" true (again.Service.outcome = rep.Service.outcome))

let test_deadline_exceeded () =
  let r = small Presets.Jokes in
  with_service Service.default (fun svc ->
      let tk =
        Service.submit svc ~deadline_s:0.0 (fun ~cancel ~attempt:_ ~degraded ->
            count_query r ~cancel ~degraded)
      in
      let rep = Service.await tk in
      check_error "deadline 0" Service.Deadline_exceeded rep.Service.outcome)

let test_overload_rejects () =
  let gate = Atomic.make false in
  let started = Atomic.make false in
  let cfg = { Service.default with Service.queue_capacity = 1 } in
  with_service cfg (fun svc ->
      let block ~cancel:_ ~attempt:_ ~degraded:_ =
        Atomic.set started true;
        while not (Atomic.get gate) do
          Unix.sleepf 0.0002
        done;
        1
      in
      let t1 = Service.submit svc block in
      wait_for started;
      (* the worker is busy with t1, so t2 fills the whole queue and t3
         must be rejected at admission *)
      let t2 = Service.submit svc (fun ~cancel:_ ~attempt:_ ~degraded:_ -> 2) in
      let t3 = Service.submit svc (fun ~cancel:_ ~attempt:_ ~degraded:_ -> 3) in
      let r3 = Service.await t3 in
      check_error "t3 rejected" Service.Overloaded r3.Service.outcome;
      Alcotest.(check int) "rejection burns no attempts" 0 r3.Service.attempts;
      Atomic.set gate true;
      Alcotest.(check bool) "t1 completes" true ((Service.await t1).Service.outcome = Ok 1);
      Alcotest.(check bool) "t2 completes" true ((Service.await t2).Service.outcome = Ok 2))

let test_client_cancel () =
  let started = Atomic.make false in
  with_service Service.default (fun svc ->
      let tk =
        Service.submit svc (fun ~cancel ~attempt:_ ~degraded:_ ->
            Atomic.set started true;
            while true do
              Cancel.check cancel;
              Unix.sleepf 0.0002
            done;
            0)
      in
      wait_for started;
      Service.cancel tk;
      let rep = Service.await tk in
      check_error "cancelled" Service.Cancelled rep.Service.outcome)

let test_shutdown_aborts_queued () =
  let gate = Atomic.make false in
  let started = Atomic.make false in
  let svc = Service.create Service.default in
  let t1 =
    Service.submit svc (fun ~cancel:_ ~attempt:_ ~degraded:_ ->
        Atomic.set started true;
        while not (Atomic.get gate) do
          Unix.sleepf 0.0002
        done;
        1)
  in
  wait_for started;
  let t2 = Service.submit svc (fun ~cancel:_ ~attempt:_ ~degraded:_ -> 2) in
  (* release the worker just before shutdown joins it *)
  let releaser = Domain.spawn (fun () -> Unix.sleepf 0.005; Atomic.set gate true) in
  Service.shutdown svc;
  Domain.join releaser;
  Alcotest.(check bool) "in-flight query completed" true
    ((Service.await t1).Service.outcome = Ok 1);
  check_error "queued ticket aborted" Service.Cancelled (Service.await t2).Service.outcome;
  (* a submit after shutdown is rejected, not lost *)
  let t3 = Service.submit svc (fun ~cancel:_ ~attempt:_ ~degraded:_ -> 3) in
  check_error "post-shutdown submit" Service.Overloaded (Service.await t3).Service.outcome;
  Service.shutdown svc

(* ------------------------------------------------------------------ *)
(* Chaos: plan determinism and the retry/degrade ladder                 *)
(* ------------------------------------------------------------------ *)

let test_chaos_plan_deterministic () =
  let cfg = Chaos.default 42 in
  for q = 0 to 50 do
    for a = 0 to 3 do
      Alcotest.(check bool)
        (Printf.sprintf "plan (%d,%d) stable" q a)
        true
        (Chaos.plan cfg ~query:q ~attempt:a ~degraded:false
        = Chaos.plan cfg ~query:q ~attempt:a ~degraded:false)
    done
  done;
  Alcotest.(check bool) "degraded attempts spared" true
    (Chaos.plan { (Chaos.default 42) with Chaos.p_transient = 1.0 } ~query:0
       ~attempt:0 ~degraded:true
    = Chaos.No_fault)

(* Find a query key whose first attempt draws a transient and whose
   second draws nothing: submitted with that key, the query must retry
   exactly once and still return the fault-free answer. *)
let test_retry_then_success () =
  let ccfg =
    { (Chaos.default 3) with
      Chaos.p_transient = 0.5;
      Chaos.p_worker_kill = 0.0;
      Chaos.p_slowdown = 0.0 }
  in
  let faults ~attempt k =
    match Chaos.plan ccfg ~query:k ~attempt ~degraded:false with
    | Chaos.Fault { fault = Chaos.Transient; _ } -> true
    | _ -> false
  in
  let rec find k =
    if k > 10_000 then Alcotest.fail "no retry-then-success key in range"
    else if faults ~attempt:0 k && not (faults ~attempt:1 k) then k
    else find (k + 1)
  in
  let key = find 0 in
  let r = small Presets.Jokes in
  let direct = count_query r ~cancel:(Cancel.create ()) ~degraded:false in
  let cfg = { Service.default with Service.chaos = Some ccfg; Service.backoff_s = 0.0005 } in
  with_service cfg (fun svc ->
      let tk =
        Service.submit svc ~key (fun ~cancel ~attempt:_ ~degraded ->
            polled_count_query r ~cancel ~degraded)
      in
      let rep = Service.await tk in
      Alcotest.(check bool) "retried query is correct" true (rep.Service.outcome = Ok direct);
      Alcotest.(check int) "exactly one retry" 1 rep.Service.retries;
      Alcotest.(check int) "two attempts" 2 rep.Service.attempts;
      Alcotest.(check bool) "no degradation needed" false rep.Service.degraded)

let test_retries_exhaust_then_degrade () =
  let ccfg = { (Chaos.default 5) with Chaos.p_transient = 1.0 } in
  let r = small Presets.Jokes in
  let direct = count_query r ~cancel:(Cancel.create ()) ~degraded:false in
  let cfg = { Service.default with Service.chaos = Some ccfg; Service.backoff_s = 0.0005 } in
  with_service cfg (fun svc ->
      let tk =
        Service.submit svc (fun ~cancel ~attempt:_ ~degraded ->
            polled_count_query r ~cancel ~degraded)
      in
      let rep = Service.await tk in
      Alcotest.(check bool) "degraded answer is correct" true (rep.Service.outcome = Ok direct);
      Alcotest.(check bool) "served degraded" true rep.Service.degraded;
      Alcotest.(check int) "all retries burned" (Service.default.Service.max_retries + 1)
        rep.Service.retries;
      Alcotest.(check int) "normal attempts + degraded one"
        (Service.default.Service.max_retries + 2)
        rep.Service.attempts)

let test_persistent_fault_fails () =
  let ccfg =
    { (Chaos.default 5) with Chaos.p_transient = 1.0; Chaos.spare_degraded = false }
  in
  let r = small Presets.Jokes in
  let cfg = { Service.default with Service.chaos = Some ccfg; Service.backoff_s = 0.0005 } in
  with_service cfg (fun svc ->
      let tk =
        Service.submit svc (fun ~cancel ~attempt:_ ~degraded ->
            polled_count_query r ~cancel ~degraded)
      in
      match (Service.await tk).Service.outcome with
      | Error (Service.Failed msg) ->
        Alcotest.(check bool) "names the fault" true
          (String.length msg > 0)
      | Error e -> Alcotest.failf "expected Failed, got %s" (Service.error_to_string e)
      | Ok _ -> Alcotest.fail "persistent fault must not succeed")

let test_slowdown_is_harmless () =
  let ccfg =
    { Chaos.none with
      Chaos.seed = 9;
      Chaos.p_slowdown = 1.0;
      Chaos.slowdown_s = 0.001 }
  in
  let r = small Presets.Jokes in
  let direct = count_query r ~cancel:(Cancel.create ()) ~degraded:false in
  let cfg = { Service.default with Service.chaos = Some ccfg } in
  with_service cfg (fun svc ->
      let tk =
        Service.submit svc (fun ~cancel ~attempt:_ ~degraded ->
            polled_count_query r ~cancel ~degraded)
      in
      let rep = Service.await tk in
      Alcotest.(check bool) "slowdown does not change the result" true
        (rep.Service.outcome = Ok direct);
      Alcotest.(check int) "no retry for a slowdown" 0 rep.Service.retries)

(* ------------------------------------------------------------------ *)
(* Chaos-seeded property: a full workload under several seeds.          *)
(* Every completed query equals the direct engine result, every other   *)
(* resolves to a typed error, counters balance, no domain leaks, and    *)
(* the whole run is a deterministic function of the seed.               *)
(* ------------------------------------------------------------------ *)

let run_chaos_workload ~seed ~nq r =
  let ccfg = { (Chaos.default seed) with Chaos.p_transient = 0.4 } in
  let cfg =
    { Service.default with Service.chaos = Some ccfg; Service.backoff_s = 0.0002 }
  in
  with_service cfg (fun svc ->
      let tickets =
        List.init nq (fun i ->
            Service.submit svc ~key:i (fun ~cancel ~attempt:_ ~degraded ->
                polled_count_query r ~cancel ~degraded))
      in
      List.map Service.await tickets)

let test_chaos_workload_properties () =
  let r = small Presets.Jokes in
  let direct = count_query r ~cancel:(Cancel.create ()) ~degraded:false in
  List.iter
    (fun seed ->
      with_recording (fun () ->
          let reports = run_chaos_workload ~seed ~nq:12 r in
          List.iteri
            (fun i rep ->
              match rep.Service.outcome with
              | Ok n ->
                Alcotest.(check int)
                  (Printf.sprintf "seed %d query %d correct" seed i)
                  direct n
              | Error (Service.Failed _) -> ()
              | Error e ->
                Alcotest.failf "seed %d query %d: unexpected %s" seed i
                  (Service.error_to_string e))
            reports;
          let v c = Jp_obs.value c in
          Alcotest.(check int)
            (Printf.sprintf "seed %d: admissions balance" seed)
            (v Jp_obs.C.service_submitted)
            (v Jp_obs.C.service_accepted + v Jp_obs.C.service_rejected
            + v Jp_obs.C.service_shed);
          Alcotest.(check int)
            (Printf.sprintf "seed %d: resolutions balance" seed)
            (v Jp_obs.C.service_accepted)
            (v Jp_obs.C.service_completed + v Jp_obs.C.service_failed
            + v Jp_obs.C.service_deadline + v Jp_obs.C.service_expired
            + v Jp_obs.C.service_cancelled);
          Alcotest.(check int)
            (Printf.sprintf "seed %d: no leaked domains" seed)
            (v Jp_obs.C.service_workers_spawned)
            (v Jp_obs.C.service_workers_joined)))
    [ 1; 2; 3 ]

let shape rep =
  ( (match rep.Service.outcome with
    | Ok n -> `Ok n
    | Error Service.Overloaded -> `Overloaded
    | Error Service.Shed -> `Shed
    | Error Service.Expired_in_queue -> `Expired
    | Error Service.Deadline_exceeded -> `Deadline
    | Error Service.Cancelled -> `Cancelled
    | Error (Service.Failed m) -> `Failed m),
    rep.Service.attempts,
    rep.Service.retries,
    rep.Service.degraded )

(* ------------------------------------------------------------------ *)
(* Trace correlation: every query gets a distinct trace id in           *)
(* submission order, reports carry it, and the Chrome trace / latency   *)
(* histograms are fed one record per executed query.                    *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_trace_ids () =
  let r = small Presets.Jokes in
  with_recording (fun () ->
      Jp_metrics.reset ();
      let nq = 4 in
      let reports =
        with_service Service.default (fun svc ->
            let tickets =
              List.init nq (fun _ ->
                  Service.submit svc (fun ~cancel ~attempt:_ ~degraded ->
                      count_query r ~cancel ~degraded))
            in
            List.map Service.await tickets)
      in
      Alcotest.(check (list int)) "trace ids assigned in submission order"
        (List.init nq Fun.id)
        (List.map (fun rep -> rep.Service.trace_id) reports);
      let trace = Jp_metrics.chrome_trace_string () in
      List.iter
        (fun rep ->
          Alcotest.(check bool)
            (Printf.sprintf "trace carries query %d's id" rep.Service.trace_id)
            true
            (contains trace
               (Printf.sprintf "\"trace_id\":%d" rep.Service.trace_id)))
        reports;
      Alcotest.(check bool) "attempt spans recorded" true
        (contains trace "\"name\":\"service.attempt\"");
      Alcotest.(check bool) "outcome instants recorded" true
        (contains trace "\"name\":\"service.outcome\"");
      Alcotest.(check bool) "outcome carries the verdict" true
        (contains trace "\"outcome\":\"ok\"");
      let hist name =
        Jp_metrics.Hist.count (Jp_metrics.histogram_value name)
      in
      Alcotest.(check int) "one queued-latency record per query" nq
        (hist Jp_metrics.H.service_queued_seconds);
      Alcotest.(check int) "one ran-latency record per query" nq
        (hist Jp_metrics.H.service_ran_seconds);
      Jp_metrics.reset ())

let test_chaos_workload_deterministic () =
  let r = small Presets.Jokes in
  let a = List.map shape (run_chaos_workload ~seed:2 ~nq:12 r) in
  let b = List.map shape (run_chaos_workload ~seed:2 ~nq:12 r) in
  Alcotest.(check bool) "same seed, same run" true (a = b);
  let c = List.map shape (run_chaos_workload ~seed:4 ~nq:12 r) in
  Alcotest.(check bool) "different seed, different faults" true (a <> c)

(* ------------------------------------------------------------------ *)
(* Overload controller: estimator + hysteresis units.  The controller   *)
(* is clock-free, so these drive it directly with hand-fed durations    *)
(* and queue depths — fully deterministic.                              *)
(* ------------------------------------------------------------------ *)

let test_overload_estimator () =
  let c = Overload.create { Overload.default with Overload.ewma_alpha = 0.5 } in
  Alcotest.(check (float 0.)) "ewma starts at 0" 0.0 (Overload.est_exec_s c);
  Overload.note_executed c ~queued_s:0.0 ~ran_s:0.1;
  Alcotest.(check (float 1e-9)) "first sample seeds the ewma" 0.1
    (Overload.est_exec_s c);
  Overload.note_executed c ~queued_s:0.0 ~ran_s:0.3;
  Alcotest.(check (float 1e-9)) "alpha blend" 0.2 (Overload.est_exec_s c);
  (* backlog model: wait = ewma * queued / workers *)
  let v = Overload.assess c ~queued:4 ~workers:2 ~deadline_s:(Some 10.0) in
  Alcotest.(check (float 1e-9)) "backlog estimate" 0.4 v.Overload.est_wait_s;
  Alcotest.(check bool) "far from the deadline: admit" false v.Overload.shed

let test_overload_empty_queue_recovers () =
  let c = Overload.create Overload.default in
  (* a burst of terrible observed waits... *)
  for _ = 1 to 10 do
    Overload.note_executed c ~queued_s:5.0 ~ran_s:0.001
  done;
  (* ...sheds while the queue is deep *)
  let deep = Overload.assess c ~queued:8 ~workers:1 ~deadline_s:(Some 0.5) in
  Alcotest.(check bool) "deep queue sheds" true deep.Overload.shed;
  (* but once the queue drains the next query can start immediately: the
     stale observed waits must not keep the shedder latched shut *)
  let empty = Overload.assess c ~queued:0 ~workers:1 ~deadline_s:(Some 0.5) in
  Alcotest.(check (float 1e-9)) "empty queue: zero wait estimate" 0.0
    empty.Overload.est_wait_s;
  Alcotest.(check bool) "empty queue admits" false empty.Overload.shed

let test_overload_hysteresis () =
  let cfg =
    { Overload.default with Overload.enter_after = 3; Overload.exit_after = 2 }
  in
  let c = Overload.create cfg in
  Overload.note_executed c ~queued_s:0.0 ~ran_s:0.1;
  (* hot: est completion 0.1*50 + 0.1 = 5.1 over a 1s deadline; cool:
     empty queue leaves just one ewma execution, well under exit*d *)
  let hot () = Overload.assess c ~queued:50 ~workers:1 ~deadline_s:(Some 1.0) in
  let cool () = Overload.assess c ~queued:0 ~workers:1 ~deadline_s:(Some 1.0) in
  let v1 = hot () in
  Alcotest.(check bool) "one hot admission: not in yet" false v1.Overload.brownout;
  ignore (cool ());
  ignore (hot ());
  let v3 = hot () in
  Alcotest.(check bool) "cool admission reset the streak" false v3.Overload.brownout;
  let v4 = hot () in
  Alcotest.(check bool) "third consecutive hot enters" true v4.Overload.brownout;
  Alcotest.(check bool) "entered edge reported once" true v4.Overload.entered;
  Alcotest.(check bool) "in_brownout agrees" true (Overload.in_brownout c);
  let v5 = cool () in
  Alcotest.(check bool) "one cool admission: still in" true v5.Overload.brownout;
  let v6 = cool () in
  Alcotest.(check bool) "second consecutive cool exits" false v6.Overload.brownout;
  Alcotest.(check bool) "exited edge reported once" true v6.Overload.exited;
  (* deadline-free admissions have nothing to protect: report-only *)
  let v7 = Overload.assess c ~queued:50 ~workers:1 ~deadline_s:None in
  Alcotest.(check bool) "no deadline never sheds" false v7.Overload.shed

(* ------------------------------------------------------------------ *)
(* Overload behaviours through the service itself                       *)
(* ------------------------------------------------------------------ *)

let test_shed_at_admission () =
  let cfg = { Service.default with Service.controller = Some Overload.default } in
  with_service cfg (fun svc ->
      (* prime the execution-time EWMA with a deliberately slow query *)
      let slow =
        Service.submit svc (fun ~cancel:_ ~attempt:_ ~degraded:_ ->
            Unix.sleepf 0.03;
            0)
      in
      ignore (Service.await slow);
      (* a generous deadline is untouched *)
      let ok =
        Service.submit svc ~deadline_s:10.0 (fun ~cancel:_ ~attempt:_ ~degraded:_ -> 1)
      in
      Alcotest.(check bool) "generous deadline served" true
        ((Service.await ok).Service.outcome = Ok 1);
      (* a deadline below one expected execution cannot be met even on an
         idle service: shed at admission, zero engine attempts *)
      let tk =
        Service.submit svc ~deadline_s:0.002 (fun ~cancel:_ ~attempt:_ ~degraded:_ -> 2)
      in
      let rep = Service.await tk in
      check_error "estimated completion past deadline" Service.Shed rep.Service.outcome;
      Alcotest.(check int) "shedding burns no attempts" 0 rep.Service.attempts)

let test_expired_in_queue () =
  let gate = Atomic.make false in
  let started = Atomic.make false in
  let cfg = { Service.default with Service.controller = Some Overload.default } in
  with_service cfg (fun svc ->
      let blocker =
        Service.submit svc (fun ~cancel:_ ~attempt:_ ~degraded:_ ->
            Atomic.set started true;
            while not (Atomic.get gate) do
              Unix.sleepf 0.0002
            done;
            0)
      in
      wait_for started;
      (* queued behind the blocker with a deadline shorter than the block:
         the worker must find it already dead at dequeue and not run it
         (the EWMA is still unprimed here, so admission lets it through) *)
      let tk =
        Service.submit svc ~deadline_s:0.005 (fun ~cancel:_ ~attempt:_ ~degraded:_ -> 1)
      in
      Unix.sleepf 0.02;
      Atomic.set gate true;
      Alcotest.(check bool) "blocker completes" true
        ((Service.await blocker).Service.outcome = Ok 0);
      let rep = Service.await tk in
      check_error "dead at dequeue" Service.Expired_in_queue rep.Service.outcome;
      Alcotest.(check int) "zero engine attempts" 0 rep.Service.attempts;
      Alcotest.(check bool) "measured its queue wait" true (rep.Service.queued_s > 0.0))

let svc_int_tag : int Jp_cache.tag = Jp_cache.tag "test.service.int"

let test_brownout_degrades_no_publish () =
  let r = small Presets.Jokes in
  let direct = count_query r ~cancel:(Cancel.create ()) ~degraded:false in
  let ctl =
    { Overload.default with Overload.enter_after = 1; Overload.shed_margin = 4.0 }
  in
  let cfg = { Service.default with Service.controller = Some ctl } in
  let cache = Jp_cache.create () in
  let binding =
    Jp_cache.binding cache svc_int_tag
      (Jp_cache.Key.of_relations ~kind:"test.brownout" [ r ])
      ~bytes_of:(fun _ -> 16)
      ()
  in
  with_recording (fun () ->
      with_service cfg (fun svc ->
          let slow =
            Service.submit svc (fun ~cancel:_ ~attempt:_ ~degraded:_ ->
                Unix.sleepf 0.1;
                0)
          in
          ignore (Service.await slow);
          (* one expected execution (~100ms) lands between brownout_enter
             and shed_margin of a 150ms deadline: hot enough to enter
             brownout on this single admission (enter_after = 1), cheap
             enough to admit rather than shed *)
          let tk =
            Service.submit svc ~deadline_s:0.15 ~cached:binding
              (fun ~cancel ~attempt:_ ~degraded -> count_query r ~cancel ~degraded)
          in
          let rep = Service.await tk in
          (match rep.Service.outcome with
          | Ok n -> Alcotest.(check int) "browned-out answer correct" direct n
          | Error e ->
            Alcotest.failf "brownout query failed: %s" (Service.error_to_string e));
          Alcotest.(check bool) "served on the degraded path" true rep.Service.degraded;
          Alcotest.(check bool) "degraded result never published" true
            (Jp_cache.binding_find binding = None);
          Alcotest.(check bool) "brownout entry counted" true
            (Jp_obs.value Jp_obs.C.service_brownout_entered >= 1);
          Alcotest.(check bool) "brownout service counted" true
            (Jp_obs.value Jp_obs.C.service_brownout_served >= 1)))

(* Open-loop + chaos: without deadlines nothing in the run depends on the
   wall clock (no shed, no expiry, report-only controller), so the full
   outcome-shape sequence must be a pure function of the seeds even
   though arrivals pace themselves against real time. *)
let test_open_loop_deterministic () =
  let r = small Presets.Jokes in
  let nq = 24 in
  let run () =
    let ccfg = { (Chaos.default 6) with Chaos.p_transient = 0.4 } in
    let cfg =
      { Service.default with
        Service.chaos = Some ccfg;
        Service.backoff_s = 0.0002;
        Service.queue_capacity = 2 * nq;
        Service.controller = Some Overload.default }
    in
    with_service cfg (fun svc ->
        let schedule =
          Arrivals.schedule ~process:Arrivals.Poisson ~seed:5 ~rate:400.0 ~count:nq ()
        in
        let tickets = Array.make nq None in
        ignore
          (Arrivals.drive ~now:Jp_util.Timer.now ~sleep:Unix.sleepf ~schedule
             (fun i ->
               tickets.(i) <-
                 Some
                   (Service.submit svc ~key:i (fun ~cancel ~attempt:_ ~degraded ->
                        polled_count_query r ~cancel ~degraded))));
        Array.to_list tickets
        |> List.map (fun tk -> shape (Service.await (Option.get tk))))
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool) "same seeds, same outcome shapes" true (a = b)

let suite =
  [
    Alcotest.test_case "cancel token inert" `Quick test_cancel_token_inert;
    Alcotest.test_case "pre-cancelled raises" `Quick test_precancelled_engine_raises;
    Alcotest.test_case "submit/await" `Quick test_submit_await;
    Alcotest.test_case "deadline exceeded" `Quick test_deadline_exceeded;
    Alcotest.test_case "overload rejects" `Quick test_overload_rejects;
    Alcotest.test_case "client cancel" `Quick test_client_cancel;
    Alcotest.test_case "shutdown aborts queued" `Quick test_shutdown_aborts_queued;
    Alcotest.test_case "chaos plan deterministic" `Quick test_chaos_plan_deterministic;
    Alcotest.test_case "retry then success" `Quick test_retry_then_success;
    Alcotest.test_case "retries exhaust, degrade" `Quick test_retries_exhaust_then_degrade;
    Alcotest.test_case "persistent fault fails" `Quick test_persistent_fault_fails;
    Alcotest.test_case "slowdown harmless" `Quick test_slowdown_is_harmless;
    Alcotest.test_case "chaos workload properties" `Quick test_chaos_workload_properties;
    Alcotest.test_case "trace ids correlate" `Quick test_trace_ids;
    Alcotest.test_case "chaos workload deterministic" `Quick test_chaos_workload_deterministic;
    Alcotest.test_case "overload estimator" `Quick test_overload_estimator;
    Alcotest.test_case "overload empty-queue recovery" `Quick test_overload_empty_queue_recovers;
    Alcotest.test_case "overload hysteresis" `Quick test_overload_hysteresis;
    Alcotest.test_case "shed at admission" `Quick test_shed_at_admission;
    Alcotest.test_case "expired in queue" `Quick test_expired_in_queue;
    Alcotest.test_case "brownout degrades, no publish" `Quick test_brownout_degrades_no_publish;
    Alcotest.test_case "open-loop deterministic" `Quick test_open_loop_deterministic;
  ]
