module Cq = Jp_query.Cq
module Hypergraph = Jp_query.Hypergraph
module Bag = Jp_query.Bag
module Yannakakis = Jp_query.Yannakakis
module Engine = Jp_query.Engine
module Relation = Jp_relation.Relation
module Tuples = Jp_relation.Tuples

let parse_ok s =
  match Cq.parse s with Ok q -> q | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_basic () =
  let q = parse_ok "Q(x, z) :- R(x, y), S(z, y)" in
  Alcotest.(check (list string)) "head" [ "x"; "z" ] q.Cq.head;
  Alcotest.(check int) "atoms" 2 (List.length q.Cq.body);
  Alcotest.(check (list string)) "vars" [ "x"; "y"; "z" ] (Cq.vars q);
  (* roundtrip *)
  Alcotest.(check bool) "roundtrip" true (Cq.equal q (parse_ok (Cq.to_string q)))

let test_parse_constants_and_repeats () =
  let q = parse_ok "Q(x) :- R(x, 7), S(x, x), T(-3, x)" in
  (match (List.nth q.Cq.body 0).Cq.args with
  | Cq.Var "x", Cq.Const 7 -> ()
  | _ -> Alcotest.fail "constant arg");
  Alcotest.(check (list string)) "repeated var collapses" [ "x" ]
    (Cq.atom_vars (List.nth q.Cq.body 1));
  (match (List.nth q.Cq.body 2).Cq.args with
  | Cq.Const (-3), Cq.Var "x" -> ()
  | _ -> Alcotest.fail "negative constant")

let test_parse_boolean_head () =
  let q = parse_ok "Q() :- R(x, y)" in
  Alcotest.(check (list string)) "empty head" [] q.Cq.head

let test_parse_errors () =
  let fails s =
    match Cq.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse failure: %s" s
  in
  fails "Q(x) :- ";
  fails "Q(x) : R(x, y)";
  fails "Q(x) :- R(x y)";
  fails "Q(w) :- R(x, y)" (* unbound head var *);
  fails "Q(x) :- R(x, y) garbage";
  fails "Q(1) :- R(x, y)" (* constant in head *)

let test_parse_edge_cases () =
  (* duplicate atoms are legal (idempotent joins) *)
  let q = parse_ok "Q(x) :- R(x, y), R(x, y)" in
  Alcotest.(check int) "duplicate atoms kept" 2 (List.length q.Cq.body);
  (* repeated head variable *)
  let q = parse_ok "Q(x, x) :- R(x, y)" in
  Alcotest.(check (list string)) "repeated head var" [ "x"; "x" ] q.Cq.head;
  (* constant-only atom *)
  let q = parse_ok "Q(x) :- R(x, y), S(1, 2)" in
  Alcotest.(check (list string)) "constant-only atom has no vars" []
    (Cq.atom_vars (List.nth q.Cq.body 1));
  (* whitespace tolerance, and roundtrip through the normalized form *)
  let q = parse_ok "  Q ( x , z )  :-  R ( x , y ) ,\n  S ( z , y )  " in
  Alcotest.(check bool) "whitespace-insensitive" true
    (Cq.equal q (parse_ok "Q(x,z) :- R(x,y), S(z,y)"))

let test_parse_error_positions () =
  let check_error s expect =
    match Cq.parse s with
    | Ok _ -> Alcotest.failf "expected parse failure: %s" s
    | Error e -> Alcotest.(check string) s expect e
  in
  check_error "Q(x) :- R(x y)" "parse error at offset 12: expected ',', found 'y'";
  (* the unbound-head-variable error points at the variable, not offset 0 *)
  check_error "Q(w) :- R(x, y)"
    "parse error at offset 2: head variable 'w' not bound in body";
  check_error "Q(x, w) :- R(x, y)"
    "parse error at offset 5: head variable 'w' not bound in body";
  check_error "Q(1) :- R(x, y)"
    "parse error at offset 3: head arguments must be variables"

let prop_parse_roundtrip =
  QCheck.Test.make ~name:"generated queries roundtrip through the parser" ~count:100
    QCheck.(pair (int_range 1 4) (int_range 0 3))
    (fun (n_atoms, head_n) ->
      let var i = Printf.sprintf "v%d" i in
      let body =
        List.init n_atoms (fun i ->
            {
              Cq.relation = Printf.sprintf "R%d" i;
              args = (Cq.Var (var i), Cq.Var (var (i + 1)));
            })
      in
      let head = List.init (min head_n n_atoms) var in
      let q = { Cq.head; body } in
      match Cq.parse (Cq.to_string q) with
      | Ok q' -> Cq.equal q q'
      | Error _ -> false)

let test_acyclicity () =
  let acyclic =
    [
      "Q(x) :- R(x, y)";
      "Q(x, z) :- R(x, y), S(z, y)";
      "Q(a, d) :- R(a, b), S(b, c), T(c, d)" (* path *);
      "Q(a, b, c) :- R(a, y), S(b, y), T(c, y)" (* star *);
      "Q(a, b) :- R(a, b), S(a, b)" (* parallel edges *);
      "Q(a, c) :- R(a, b), S(c, d)" (* disconnected *);
    ]
  in
  let cyclic =
    [
      "Q(a) :- R(a, b), S(b, c), T(c, a)" (* triangle *);
      "Q(a) :- R(a, b), S(b, c), T(c, d), U(d, a)" (* 4-cycle *);
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (Hypergraph.is_acyclic (parse_ok s)))
    acyclic;
  List.iter
    (fun s ->
      Alcotest.(check bool) s false (Hypergraph.is_acyclic (parse_ok s)))
    cyclic

let test_join_tree_structure () =
  let q = parse_ok "Q(a, d) :- R(a, b), S(b, c), T(c, d)" in
  match Hypergraph.join_tree q with
  | None -> Alcotest.fail "path should be acyclic"
  | Some t ->
    Alcotest.(check int) "order covers all atoms" 3 (List.length t.Hypergraph.order);
    let roots =
      List.filter (fun e -> t.Hypergraph.parent.(e) < 0) t.Hypergraph.order
    in
    Alcotest.(check int) "one root" 1 (List.length roots)

let test_bag_of_relation () =
  let r = Relation.of_edges [| (0, 1); (1, 1); (2, 2) |] in
  let bag_all = Bag.of_relation r { Cq.relation = "R"; args = (Cq.Var "x", Cq.Var "y") } in
  Alcotest.(check int) "all tuples" 3 (Bag.cardinality bag_all);
  let bag_sel = Bag.of_relation r { Cq.relation = "R"; args = (Cq.Var "x", Cq.Const 1) } in
  Alcotest.(check (list (list int))) "selection" [ [ 0 ]; [ 1 ] ]
    (Bag.to_sorted_list bag_sel);
  let bag_diag = Bag.of_relation r { Cq.relation = "R"; args = (Cq.Var "x", Cq.Var "x") } in
  Alcotest.(check (list (list int))) "diagonal" [ [ 1 ]; [ 2 ] ]
    (Bag.to_sorted_list bag_diag);
  let bag_const = Bag.of_relation r { Cq.relation = "R"; args = (Cq.Const 0, Cq.Const 1) } in
  Alcotest.(check int) "constant hit" 1 (Bag.cardinality bag_const);
  let bag_miss = Bag.of_relation r { Cq.relation = "R"; args = (Cq.Const 0, Cq.Const 2) } in
  Alcotest.(check int) "constant miss" 0 (Bag.cardinality bag_miss)

let test_bag_ops () =
  let a = Bag.make ~vars:[ "x"; "y" ] [ [| 1; 10 |]; [| 2; 20 |]; [| 3; 30 |] ] in
  let b = Bag.make ~vars:[ "y"; "z" ] [ [| 10; 5 |]; [| 10; 6 |]; [| 99; 7 |] ] in
  let sj = Bag.semijoin a b in
  Alcotest.(check (list (list int))) "semijoin" [ [ 1; 10 ] ] (Bag.to_sorted_list sj);
  let j = Bag.join_project a b ~keep:[ "x"; "z" ] in
  Alcotest.(check (list (list int))) "join project" [ [ 1; 5 ]; [ 1; 6 ] ]
    (Bag.to_sorted_list j);
  let p = Bag.project a ~keep:[ "y" ] in
  Alcotest.(check (list (list int))) "project" [ [ 10 ]; [ 20 ]; [ 30 ] ]
    (Bag.to_sorted_list p);
  (* empty shared vars: cartesian semantics *)
  let c = Bag.make ~vars:[ "w" ] [ [| 42 |] ] in
  Alcotest.(check int) "semijoin no shared, non-empty" 3
    (Bag.cardinality (Bag.semijoin a c));
  let empty = Bag.make ~vars:[ "w" ] [] in
  Alcotest.(check int) "semijoin no shared, empty" 0
    (Bag.cardinality (Bag.semijoin a empty));
  Alcotest.(check int) "cartesian join" 3
    (Bag.cardinality (Bag.join_project a c ~keep:[ "x"; "w" ]))

(* brute-force CQ evaluation: shared with the other suites via Gen *)
let brute = Gen.brute_cq

let small_catalog seed =
  [
    ("R", Gen.random_relation ~seed ~nx:6 ~ny:6 ~edges:14 ());
    ("S", Gen.random_relation ~seed:(seed + 1) ~nx:6 ~ny:6 ~edges:14 ());
    ("T", Gen.random_relation ~seed:(seed + 2) ~nx:6 ~ny:6 ~edges:14 ());
  ]

let queries_for_agreement =
  [
    "Q(x, z) :- R(x, y), S(z, y)";
    "Q(a, d) :- R(a, b), S(b, c), T(c, d)";
    "Q(a, b, c) :- R(a, y), S(b, y), T(c, y)";
    "Q(b) :- R(1, b)";
    "Q(a) :- R(a, b), S(b, 2)";
    "Q(a, b) :- R(a, b), S(a, b)";
    "Q(x) :- R(x, x)";
    "Q(a, c) :- R(a, b), S(c, d)";
    "Q(x, x, b) :- R(x, b)" (* duplicated head variable *);
  ]

(* seeded random acyclic queries (trees, star bursts, parallel edges,
   constants, repeated variables, disconnected components, boolean
   heads): the engine must match brute force under every dispatch
   policy, including Always_mm, which force-routes every eligible
   fragment through the MM engines even where the cost gate would not *)
let prop_random_cq_fuzz =
  let policies =
    [
      ("auto", Jp_query.Planner.Cost_gate);
      ("mm", Jp_query.Planner.Always_mm);
      ("yannakakis", Jp_query.Planner.Never_mm);
    ]
  in
  QCheck.Test.make ~name:"engine = brute force on seeded random CQs" ~count:200
    QCheck.small_int (fun seed ->
      let { Gen.query = q; catalog } = Gen.random_cq ~seed () in
      if not (Hypergraph.is_acyclic q) then
        QCheck.Test.fail_reportf "generator produced a cyclic query: %s"
          (Cq.to_string q);
      List.for_all
        (fun (pname, policy) ->
          if q.Cq.head = [] then (
            match Engine.boolean ~policy catalog q with
            | Error e ->
              QCheck.Test.fail_reportf "%s [%s]: %s" (Cq.to_string q) pname e
            | Ok sat -> sat = Gen.brute_cq_boolean catalog q)
          else
            match Engine.run ~policy catalog q with
            | Error e ->
              QCheck.Test.fail_reportf "%s [%s]: %s" (Cq.to_string q) pname e
            | Ok t -> Tuples.to_list t = brute catalog q)
        policies)

let test_yannakakis_matches_brute () =
  List.iter
    (fun seed ->
      let catalog = small_catalog seed in
      List.iter
        (fun qs ->
          let q = parse_ok qs in
          match Yannakakis.run catalog q with
          | Error e -> Alcotest.failf "%s: %s" qs e
          | Ok t ->
            Alcotest.(check (list (list int)))
              (Printf.sprintf "%s (seed %d)" qs seed)
              (brute catalog q) (Tuples.to_list t))
        queries_for_agreement)
    [ 201; 202; 203 ]

let test_engine_matches_yannakakis () =
  let catalog = small_catalog 210 in
  List.iter
    (fun qs ->
      let q = parse_ok qs in
      match (Engine.run catalog q, Yannakakis.run catalog q) with
      | Ok a, Ok b ->
        Alcotest.(check (list (list int))) qs (Tuples.to_list b) (Tuples.to_list a)
      | Error e, _ | _, Error e -> Alcotest.failf "%s: %s" qs e)
    (queries_for_agreement
    @ [
        "Q(z, x) :- R(x, y), S(z, y)" (* permuted head *);
        "Q(a, b) :- R(y, a), S(b, y)" (* mixed orientation star *);
      ])

let test_engine_plans () =
  let check_plan ?policy qs expect =
    match Engine.plan_of ?policy (parse_ok qs) with
    | Ok p -> Alcotest.(check string) qs expect (Engine.describe p)
    | Error e -> Alcotest.failf "%s: %s" qs e
  in
  check_plan "Q(x, z) :- R(x, y), S(z, y)" "star query (k=2) via MMJoin";
  check_plan "Q(a, b, c) :- R(a, y), S(b, y), T(c, y)" "star query (k=3) via MMJoin";
  (* without a catalog the cost gate carves nothing *)
  check_plan "Q(a, d) :- R(a, b), S(b, c), T(c, d)" "acyclic query via Yannakakis";
  check_plan "Q(x, y) :- R(x, y), S(y, x)" "acyclic query via Yannakakis";
  (* forced policies override both the gate and the whole-star bypass *)
  check_plan ~policy:Jp_query.Planner.Always_mm
    "Q(a, d) :- R(a, b), S(b, c), T(c, d)"
    "decomposed: 1 two-path MM fragment + 1 scan via Yannakakis";
  check_plan ~policy:Jp_query.Planner.Always_mm
    "Q(a) :- R(a, b), S(c, b), T(c, d)"
    "decomposed: 1 two-path MM fragment + 1 scan via Yannakakis";
  check_plan ~policy:Jp_query.Planner.Never_mm "Q(x, z) :- R(x, y), S(z, y)"
    "acyclic query via Yannakakis";
  (match Engine.plan_of (parse_ok "Q(a) :- R(a, b), S(b, c), T(c, a)") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "triangle should be rejected")

let test_boolean_query () =
  let catalog = [ ("R", Relation.of_edges [| (0, 1) |]) ] in
  (match Yannakakis.boolean catalog (parse_ok "Q() :- R(0, 1)") with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "should be satisfiable"
  | Error e -> Alcotest.fail e);
  match Yannakakis.boolean catalog (parse_ok "Q() :- R(1, 0)") with
  | Ok false -> ()
  | Ok true -> Alcotest.fail "should be unsatisfiable"
  | Error e -> Alcotest.fail e

let test_unknown_relation () =
  match Yannakakis.run [] (parse_ok "Q(x) :- Nope(x, y)") with
  | Error e -> Alcotest.(check bool) "mentions name" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected unknown-relation error"

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "parse constants/repeats" `Quick test_parse_constants_and_repeats;
    Alcotest.test_case "parse boolean head" `Quick test_parse_boolean_head;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse edge cases" `Quick test_parse_edge_cases;
    Alcotest.test_case "parse error positions" `Quick test_parse_error_positions;
    QCheck_alcotest.to_alcotest prop_parse_roundtrip;
    QCheck_alcotest.to_alcotest prop_random_cq_fuzz;
    Alcotest.test_case "acyclicity" `Quick test_acyclicity;
    Alcotest.test_case "join tree" `Quick test_join_tree_structure;
    Alcotest.test_case "bag of relation" `Quick test_bag_of_relation;
    Alcotest.test_case "bag ops" `Quick test_bag_ops;
    Alcotest.test_case "yannakakis = brute" `Quick test_yannakakis_matches_brute;
    Alcotest.test_case "engine = yannakakis" `Quick test_engine_matches_yannakakis;
    Alcotest.test_case "engine plans" `Quick test_engine_plans;
    Alcotest.test_case "boolean query" `Quick test_boolean_query;
    Alcotest.test_case "unknown relation" `Quick test_unknown_relation;
  ]
