module Obs = Jp_obs
module Json = Jp_obs.Json
module Pairs = Jp_relation.Pairs

(* Every test toggles the process-global recorder; always leave it off
   and empty for whoever runs next. *)
let with_recording f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let parse_json str =
  match Json.of_string str with
  | Ok v -> v
  | Error e -> Alcotest.failf "json parse error: %s" e

let member name v =
  match Json.member name v with
  | Some x -> x
  | None -> Alcotest.failf "member %S missing" name

let find_node name nodes =
  match List.find_opt (fun n -> n.Obs.name = name) nodes with
  | Some n -> n
  | None -> Alcotest.failf "span %S not found" name

let test_span_nesting () =
  with_recording (fun () ->
      Obs.span "outer" (fun () ->
          Obs.span "first" (fun () -> ());
          Obs.span "second" (fun () -> ());
          Obs.span "first" (fun () -> ()));
      Obs.span "root2" (fun () -> ());
      let tree = Obs.span_tree () in
      Alcotest.(check (list string))
        "roots in first-call order" [ "outer"; "root2" ]
        (List.map (fun n -> n.Obs.name) tree);
      let outer = find_node "outer" tree in
      Alcotest.(check int) "outer called once" 1 outer.Obs.calls;
      Alcotest.(check (list string))
        "children in first-call order" [ "first"; "second" ]
        (List.map (fun n -> n.Obs.name) outer.Obs.children);
      let first = find_node "first" outer.Obs.children in
      Alcotest.(check int) "repeat calls aggregate" 2 first.Obs.calls;
      Alcotest.(check bool)
        "parent time covers children" true
        (outer.Obs.seconds
        >= List.fold_left
             (fun acc n -> acc +. n.Obs.seconds)
             0.0 outer.Obs.children))

let test_span_exception_unwinds () =
  with_recording (fun () ->
      (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
      Obs.span "after" (fun () -> ());
      let tree = Obs.span_tree () in
      (* "after" must be a root: the failed span popped itself off the
         stack on the way out. *)
      Alcotest.(check (list string))
        "exception closes the span" [ "boom"; "after" ]
        (List.map (fun n -> n.Obs.name) tree))

let test_counter_reset () =
  let c = Obs.counter "test.obs_counter" in
  with_recording (fun () ->
      Obs.add c 5;
      Obs.incr c;
      Alcotest.(check int) "accumulates" 6 (Obs.value c);
      Obs.reset ();
      Alcotest.(check int) "reset clears" 0 (Obs.value c);
      Alcotest.(check bool)
        "registered in counter_values" true
        (List.mem_assoc "test.obs_counter" (Obs.counter_values ())))

let test_disabled_noop () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.counter "test.obs_disabled" in
  Obs.add c 7;
  Alcotest.(check int) "adds dropped while off" 0 (Obs.value c);
  let x, dt = Obs.timed_span "off" (fun () -> 41 + 1) in
  Alcotest.(check int) "span still runs f" 42 x;
  Alcotest.(check (float 0.0)) "no time measured" 0.0 dt;
  Alcotest.(check int) "no events recorded" 0 (List.length (Obs.span_tree ()));
  Obs.record_plan ~label:"off" ~decision:"wcoj" ~est_out:1 ~join_size:1
    ~est_seconds:0.0 ~actual_out:1 ~actual_seconds:0.0 ~phases:[] ();
  Alcotest.(check int) "plan records dropped" 0
    (List.length (Obs.plan_records ()))

let test_chrome_trace_parses_back () =
  with_recording (fun () ->
      Obs.span "alpha" (fun () -> Obs.span "beta" (fun () -> ()));
      let c = Obs.counter "test.obs_trace" in
      Obs.add c 3;
      let doc = parse_json (Obs.chrome_trace_string ()) in
      let events =
        match Json.to_list_opt (member "traceEvents" doc) with
        | Some l -> l
        | None -> Alcotest.fail "traceEvents is not a list"
      in
      Alcotest.(check int) "one event per span" 2 (List.length events);
      let names =
        List.filter_map (fun e -> Json.to_string_opt (member "name" e)) events
      in
      Alcotest.(check bool) "alpha present" true (List.mem "alpha" names);
      Alcotest.(check bool) "beta present" true (List.mem "beta" names);
      List.iter
        (fun e ->
          Alcotest.(check (option string))
            "complete event" (Some "X")
            (Json.to_string_opt (member "ph" e));
          (match Json.to_float_opt (member "ts" e) with
          | Some ts -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.0)
          | None -> Alcotest.fail "ts missing");
          match Json.to_float_opt (member "dur" e) with
          | Some dur -> Alcotest.(check bool) "dur >= 0" true (dur >= 0.0)
          | None -> Alcotest.fail "dur missing")
        events;
      match
        Json.to_int_opt
          (member "test.obs_trace" (member "counters" (member "otherData" doc)))
      with
      | Some 3 -> ()
      | other ->
        Alcotest.failf "counter missing from otherData (got %s)"
          (match other with Some n -> string_of_int n | None -> "nothing"))

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\n\t");
        ("i", Json.Int (-42));
        ("f", Json.Float 0.35);
        ("t", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  Alcotest.(check bool)
    "compact form round-trips" true
    (parse_json (Json.to_string doc) = doc);
  Alcotest.(check bool)
    "pretty form round-trips" true
    (parse_json (Json.to_string_pretty doc) = doc)

(* A deterministic partitioned workload: skewed so Algorithm 3 picks the
   matrix path and every counter family fires. *)
let workload () =
  let r = Gen.skewed_relation ~seed:7 ~nx:60 ~ny:40 ~edges:900 () in
  Joinproj.Two_path.project ~r ~s:r ()

let counters_of_run () =
  with_recording (fun () ->
      ignore (workload ());
      List.filter (fun (_, v) -> v <> 0) (Obs.counter_values ()))

let test_counter_determinism () =
  let first = counters_of_run () in
  let second = counters_of_run () in
  Alcotest.(check bool) "some counters fired" true (first <> []);
  Alcotest.(check (list (pair string int)))
    "identical runs produce identical counters" first second

let test_plan_vs_actual_record () =
  with_recording (fun () ->
      let pairs = workload () in
      match Obs.plan_records () with
      | [ p ] ->
        Alcotest.(check string) "label" "two_path" p.Obs.label;
        Alcotest.(check int)
          "actual_out is the result size" (Pairs.count pairs) p.Obs.actual_out;
        Alcotest.(check bool) "phases recorded" true (p.Obs.phases <> []);
        let phase_sum = List.fold_left (fun a (_, t) -> a +. t) 0.0 p.Obs.phases in
        Alcotest.(check bool)
          "phases sum within total" true
          (phase_sum <= p.Obs.actual_seconds +. 1e-3);
        Alcotest.(check bool)
          "decision rendered" true
          (String.length p.Obs.decision > 0)
      | records -> Alcotest.failf "expected 1 plan record, got %d" (List.length records))

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "span unwinds on exception" `Quick test_span_exception_unwinds;
    Alcotest.test_case "counter add and reset" `Quick test_counter_reset;
    Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "chrome trace parses back" `Quick test_chrome_trace_parses_back;
    Alcotest.test_case "json round-trips" `Quick test_json_roundtrip;
    Alcotest.test_case "counters deterministic across runs" `Quick
      test_counter_determinism;
    Alcotest.test_case "plan-vs-actual record" `Quick test_plan_vs_actual_record;
  ]
