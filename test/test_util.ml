module Bitset = Jp_util.Bitset
module Sorted = Jp_util.Sorted
module Vec = Jp_util.Vec
module Rng = Jp_util.Rng

let check = Alcotest.(check (list int))

let test_bitset_basic () =
  let b = Bitset.create 200 in
  Alcotest.(check bool) "fresh empty" true (Bitset.is_empty b);
  Bitset.set b 0;
  Bitset.set b 61;
  Bitset.set b 62;
  Bitset.set b 199;
  Alcotest.(check int) "count" 4 (Bitset.count b);
  check "iter order" [ 0; 61; 62; 199 ] (Bitset.to_list b);
  Bitset.unset b 62;
  Alcotest.(check bool) "unset" false (Bitset.mem b 62);
  Alcotest.(check int) "count after unset" 3 (Bitset.count b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "set oob" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.set b 10);
  Alcotest.check_raises "neg" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.mem b (-1) |> ignore)

let test_bitset_ops () =
  let a = Bitset.of_sorted_array 300 [| 1; 70; 150; 299 |] in
  let b = Bitset.of_sorted_array 300 [| 1; 71; 150 |] in
  let u = Bitset.copy a in
  Bitset.union_into ~dst:u b;
  check "union" [ 1; 70; 71; 150; 299 ] (Bitset.to_list u);
  Alcotest.(check int) "inter_count" 2 (Bitset.inter_count a b);
  let i = Bitset.copy a in
  Bitset.inter_into ~dst:i b;
  check "inter" [ 1; 150 ] (Bitset.to_list i)

let test_bitset_union_into_at () =
  (* Offset straddles word boundaries (62 does not divide 100). *)
  let dst = Bitset.of_sorted_array 300 [| 0; 99; 250 |] in
  let src = Bitset.of_sorted_array 70 [| 0; 5; 61; 62; 69 |] in
  Bitset.union_into_at ~dst 100 src;
  check "shifted union" [ 0; 99; 100; 105; 161; 162; 169; 250 ]
    (Bitset.to_list dst);
  (* Flush against the end of dst: the carry write must stay in bounds. *)
  let dst2 = Bitset.create 300 in
  Bitset.union_into_at ~dst:dst2 230 src;
  check "flush right" [ 230; 235; 291; 292; 299 ] (Bitset.to_list dst2);
  Alcotest.check_raises "oob"
    (Invalid_argument "Bitset.union_into_at: range out of bounds") (fun () ->
      Bitset.union_into_at ~dst:dst2 231 src)

let prop_union_into_at =
  QCheck.Test.make ~name:"union_into_at = shifted set union" ~count:300
    QCheck.(
      triple (int_bound 120) (small_list (int_bound 80))
        (small_list (int_bound 200)))
    (fun (off, src_l, dst_l) ->
      let src = Bitset.create 81 in
      List.iter (Bitset.set src) src_l;
      let dst = Bitset.create (off + 81 + 40) in
      let dst_l = List.filter (fun p -> p < Bitset.width dst) dst_l in
      List.iter (Bitset.set dst) dst_l;
      let expect =
        List.sort_uniq Stdlib.compare
          (dst_l @ List.map (fun p -> p + off) src_l)
      in
      Bitset.union_into_at ~dst off src;
      Bitset.to_list dst = expect)

let prop_bitset_matches_model =
  QCheck.Test.make ~name:"bitset agrees with a bool-array model" ~count:200
    QCheck.(pair (int_bound 300) (small_list (int_bound 300)))
    (fun (extra, positions) ->
      let width = 301 + extra in
      let b = Bitset.create width in
      let model = Array.make width false in
      List.iter
        (fun p ->
          Bitset.set b p;
          model.(p) <- true)
        positions;
      let model_list =
        Array.to_list (Array.of_seq (Seq.filter (fun i -> model.(i))
          (Seq.init width (fun i -> i))))
      in
      Bitset.to_list b = model_list
      && Bitset.count b = List.length model_list)

let sorted_of_list l =
  let a = Array.of_list l in
  Array.sort compare a;
  let v = Vec.create () in
  Array.iter (fun x -> Vec.push v x) a;
  Vec.sort_dedup v;
  Vec.to_array v

let prop_intersect =
  QCheck.Test.make ~name:"Sorted.intersect = set intersection" ~count:300
    QCheck.(pair (small_list (int_bound 100)) (small_list (int_bound 100)))
    (fun (la, lb) ->
      let a = sorted_of_list la and b = sorted_of_list lb in
      let expect =
        List.sort_uniq compare (List.filter (fun x -> List.mem x lb) la)
      in
      Array.to_list (Sorted.intersect a b) = expect
      && Sorted.intersect_count a b = List.length expect)

let prop_union_difference =
  QCheck.Test.make ~name:"Sorted.union/difference/subset" ~count:300
    QCheck.(pair (small_list (int_bound 100)) (small_list (int_bound 100)))
    (fun (la, lb) ->
      let a = sorted_of_list la and b = sorted_of_list lb in
      let sa = List.sort_uniq compare la and sb = List.sort_uniq compare lb in
      Array.to_list (Sorted.union a b) = List.sort_uniq compare (sa @ sb)
      && Array.to_list (Sorted.difference a b)
         = List.filter (fun x -> not (List.mem x sb)) sa
      && Sorted.subset a b = List.for_all (fun x -> List.mem x sb) sa)

let test_gallop () =
  let a = [| 2; 4; 6; 8; 10; 12; 14 |] in
  Alcotest.(check int) "gallop hit" 3 (Sorted.gallop a ~start:0 8);
  Alcotest.(check int) "gallop miss" 3 (Sorted.gallop a ~start:0 7);
  Alcotest.(check int) "gallop end" 7 (Sorted.gallop a ~start:0 100);
  Alcotest.(check int) "gallop start" 4 (Sorted.gallop a ~start:4 3)

let test_vec () =
  let v = Vec.create ~capacity:1 () in
  for i = 9 downto 0 do
    Vec.push v i;
    Vec.push v i
  done;
  Alcotest.(check int) "len" 20 (Vec.length v);
  Vec.sort_dedup v;
  check "sort_dedup" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (Array.to_list (Vec.to_array v));
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Vec.push2 v 5 7;
  check "push2" [ 5; 7 ] (Array.to_list (Vec.to_array v))

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  check "same seed same stream" xs ys;
  let c = Rng.create 124 in
  let zs = List.init 50 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_bounds () =
  let g = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int g 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int g 0))

let prop_intsort =
  QCheck.Test.make ~name:"Intsort.sort = Array.sort compare" ~count:500
    QCheck.(small_list int)
    (fun l ->
      let a = Array.of_list l in
      let b = Array.of_list l in
      Jp_util.Intsort.sort a;
      Array.sort compare b;
      a = b)

let prop_intsort_large_values =
  QCheck.Test.make ~name:"Intsort handles large and negative values" ~count:100
    QCheck.(list_of_size (Gen.int_range 40 120) (oneof [ int; int_bound 5 ]))
    (fun l ->
      let a = Array.of_list l in
      let b = Array.of_list l in
      Jp_util.Intsort.sort a;
      Array.sort compare b;
      a = b)

let test_intsort_sub () =
  let a = [| 9; 8; 7; 6; 5; 4 |] in
  Jp_util.Intsort.sort_sub a ~lo:1 ~hi:4;
  Alcotest.(check (list int)) "range sorted" [ 9; 6; 7; 8; 5; 4 ] (Array.to_list a);
  Alcotest.check_raises "bad range" (Invalid_argument "Intsort.sort_sub") (fun () ->
      Jp_util.Intsort.sort_sub a ~lo:2 ~hi:10)

let test_heap_basic () =
  let h = Jp_util.Heap.create () in
  Alcotest.(check bool) "empty" true (Jp_util.Heap.is_empty h);
  Jp_util.Heap.push h ~priority:5 "five";
  Jp_util.Heap.push h ~priority:1 "one";
  Jp_util.Heap.push h ~priority:3 "three";
  Alcotest.(check int) "size" 3 (Jp_util.Heap.size h);
  Alcotest.(check int) "min" 1 (Jp_util.Heap.min_priority h);
  Alcotest.(check (pair int string)) "pop 1" (1, "one") (Jp_util.Heap.pop_min h);
  Alcotest.(check (pair int string)) "pop 3" (3, "three") (Jp_util.Heap.pop_min h);
  Alcotest.(check (pair int string)) "pop 5" (5, "five") (Jp_util.Heap.pop_min h);
  Alcotest.check_raises "empty pop" (Invalid_argument "Heap.pop_min: empty")
    (fun () -> ignore (Jp_util.Heap.pop_min h))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(small_list int)
    (fun l ->
      let h = Jp_util.Heap.create () in
      List.iter (fun p -> Jp_util.Heap.push h ~priority:p ()) l;
      let drained = List.init (List.length l) (fun _ -> fst (Jp_util.Heap.pop_min h)) in
      drained = List.sort compare l)

let test_timer_median () =
  (* Three runs with well-separated busy-wait lengths; the run that was
     actually the median (measured independently here) must be the one
     whose value and time come back. *)
  let busy seconds =
    let t0 = Jp_util.Timer.now () in
    while Jp_util.Timer.now () -. t0 < seconds do () done
  in
  let calls = ref 0 in
  let durations = Array.make 3 0.0 in
  let x, dt =
    Jp_util.Timer.time_median ~repeats:3 (fun () ->
        let i = !calls in
        incr calls;
        let t0 = Jp_util.Timer.now () in
        busy (0.001 +. (0.004 *. float_of_int i));
        durations.(i) <- Jp_util.Timer.now () -. t0;
        i)
  in
  Alcotest.(check int) "ran exactly repeats times" 3 !calls;
  let order = [| 0; 1; 2 |] in
  Array.sort (fun a b -> compare durations.(a) durations.(b)) order;
  Alcotest.(check int) "value comes from the median-timed run" order.(1) x;
  Alcotest.(check bool)
    "returned time is that run's time" true
    (Float.abs (dt -. durations.(x)) < 0.002);
  Alcotest.check_raises "repeats must be >= 1"
    (Invalid_argument "Timer.time_median") (fun () ->
      ignore (Jp_util.Timer.time_median ~repeats:0 (fun () -> ())))

let test_tablefmt () =
  let s =
    Jp_util.Tablefmt.render ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333" ] ]
  in
  Alcotest.(check bool) "contains rule" true (String.length s > 0);
  Alcotest.(check string) "big_int" "1,234,567" (Jp_util.Tablefmt.big_int 1234567);
  Alcotest.(check string) "seconds ms" "12.0ms" (Jp_util.Tablefmt.seconds 0.012)

let suite =
  [
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "bitset ops" `Quick test_bitset_ops;
    Alcotest.test_case "bitset union_into_at" `Quick test_bitset_union_into_at;
    QCheck_alcotest.to_alcotest prop_union_into_at;
    QCheck_alcotest.to_alcotest prop_bitset_matches_model;
    QCheck_alcotest.to_alcotest prop_intersect;
    QCheck_alcotest.to_alcotest prop_union_difference;
    Alcotest.test_case "gallop" `Quick test_gallop;
    Alcotest.test_case "vec" `Quick test_vec;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    QCheck_alcotest.to_alcotest prop_intsort;
    QCheck_alcotest.to_alcotest prop_intsort_large_values;
    Alcotest.test_case "intsort sub" `Quick test_intsort_sub;
    Alcotest.test_case "heap basic" `Quick test_heap_basic;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "timer median" `Quick test_timer_median;
    Alcotest.test_case "tablefmt" `Quick test_tablefmt;
  ]
